//! Sensitivity study: the coverage-penalty weight λ.
//!
//! The paper sets `λ = 0.5` (eq. (8)); the SelectiveNet paper it
//! builds on uses `λ = 32`. With a fully converged, highly accurate
//! model the two behave similarly — nearly all samples have tiny loss,
//! so coverage rises to the target for free. With a CPU-budget model
//! that still misclassifies a chunk of the data, λ decides whether the
//! optimizer honours the coverage constraint or sacrifices coverage
//! for selective risk. This harness trains one model per λ at a fixed
//! `c0` and reports achieved coverage and selective accuracy.

use serde::Serialize;
use wm_bench::pipeline::{prepare, train_selective};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct LambdaRow {
    lambda: f32,
    train_coverage: f32,
    test_coverage: f64,
    selective_accuracy: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse();
    let c0 = 0.75f32;
    eprintln!(
        "lambda_sweep: scale {} grid {} epochs {} c0 {c0}",
        args.scale, args.grid, args.epochs
    );
    let data = prepare(&args);

    let lambdas = [0.5f32, 4.0, 32.0];
    println!("\nλ sensitivity at c0 = {c0} (paper: λ = 0.5; SelectiveNet: λ = 32)\n");
    println!(
        "{:>8} {:>15} {:>14} {:>20}",
        "lambda", "train coverage", "test coverage", "selective accuracy"
    );
    let mut rows = Vec::new();
    for &lambda in &lambdas {
        args.lambda = lambda;
        eprintln!("training with lambda = {lambda} ...");
        let (mut model, report) = train_selective(&args, &data.train, c0);
        let metrics = model.evaluate(&data.test, 0.5);
        println!(
            "{:>8} {:>14.1}% {:>13.1}% {:>19.1}%",
            lambda,
            report.last().coverage * 100.0,
            metrics.coverage() * 100.0,
            metrics.selective_accuracy() * 100.0
        );
        rows.push(LambdaRow {
            lambda,
            train_coverage: report.last().coverage,
            test_coverage: metrics.coverage(),
            selective_accuracy: metrics.selective_accuracy(),
        });
    }
    println!(
        "\nexpected shape: larger λ pulls achieved coverage toward the target c0 at the\n\
         cost of selective accuracy (more borderline samples get covered); tiny λ lets\n\
         coverage collapse onto the easiest classes."
    );
    save_json(&args.out_dir, "lambda_sweep", &rows);
}
