//! Fig. 4 reproduction: original (first row) vs. synthetic (second
//! row) samples from the Algorithm 1 augmentation pipeline, one pair
//! per defect class, written as PGM images.

use augment::{AugmentConfig, Augmenter};
use serde::Serialize;
use wafermap::gen::SyntheticWm811k;
use wafermap::{io, ops, DefectClass};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct Fig4Row {
    class: String,
    originals: usize,
    synthetics: usize,
    mean_die_disagreement: f32,
}

fn main() {
    let args = ExperimentArgs::parse();
    let (train, _) = SyntheticWm811k::new(args.grid).scale(args.scale).seed(args.seed).build();
    let augmenter = Augmenter::new(
        AugmentConfig::new(args.augment_target()).with_channels([8, 8, 8]).with_ae_epochs(8),
        args.seed,
    );
    let dir = args.out_dir.join("fig4");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }

    println!("Fig. 4 — original vs. synthetic augmentation samples\n");
    println!(
        "{:>10} {:>10} {:>11} {:>18}",
        "class", "originals", "synthetics", "mean disagreement"
    );
    let mut rows = Vec::new();
    for class in DefectClass::ALL.into_iter().filter(|c| c.is_defect()) {
        let synth = augmenter.augment_class(&train, class);
        let pairs = augmenter.preview_pairs(&train, class, 3);
        let mut disagreement = 0.0f32;
        let mut counted = 0usize;
        for (i, (orig, synth_map)) in pairs.iter().enumerate() {
            let slug = class.name().to_lowercase().replace('-', "_");
            let _ = io::save_pgm(orig, 8, dir.join(format!("{slug}_{i}_original.pgm")));
            let _ = io::save_pgm(synth_map, 8, dir.join(format!("{slug}_{i}_synthetic.pgm")));
            disagreement += ops::die_disagreement(orig, synth_map);
            counted += 1;
        }
        let mean = if counted > 0 { disagreement / counted as f32 } else { 0.0 };
        println!(
            "{:>10} {:>10} {:>11} {:>18.3}",
            class.name(),
            train.of_class(class).len(),
            synth.len(),
            mean
        );
        rows.push(Fig4Row {
            class: class.name().to_owned(),
            originals: train.of_class(class).len(),
            synthetics: synth.len(),
            mean_die_disagreement: mean,
        });
    }
    save_json(&args.out_dir, "fig4", &rows);
    println!("\nPGM pairs written to {}", dir.display());
}
