//! Ablation: the paper's folded auxiliary objective vs. the original
//! SelectiveNet auxiliary head.
//!
//! The DAC paper reuses the main prediction head `f` for the
//! `(1 − α)` cross-entropy term of eq. (9); SelectiveNet (Geifman &
//! El-Yaniv) trains a *separate* auxiliary head on that term. Both
//! variants are implemented; this harness trains them side by side at
//! the same coverage target and compares coverage / selective
//! accuracy.

use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use serde::Serialize;
use wm_bench::pipeline::prepare;
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct VariantRow {
    variant: String,
    coverage: f64,
    selective_accuracy: f64,
    params: usize,
}

fn main() {
    let args = ExperimentArgs::parse();
    let c0 = 0.5f32;
    eprintln!(
        "ablation_aux: scale {} grid {} epochs {} c0 {c0}",
        args.scale, args.grid, args.epochs
    );
    let data = prepare(&args);

    let train_cfg = TrainConfig {
        epochs: args.epochs,
        batch_size: args.batch_size,
        learning_rate: args.learning_rate,
        target_coverage: c0,
        lambda: 0.5,
        alpha: 0.5,
        seed: args.seed,
    };

    let mut rows = Vec::new();
    println!("\nAblation — folded (paper) vs separate (SelectiveNet) auxiliary head\n");
    println!("{:>22} {:>10} {:>20} {:>10}", "variant", "coverage", "selective accuracy", "params");
    for (name, aux) in [("folded aux (paper)", false), ("separate aux head", true)] {
        let mut config = SelectiveConfig::for_grid(args.grid);
        if aux {
            config = config.with_aux_head();
        }
        let mut model = SelectiveModel::new(&config, args.seed ^ 0x5EED);
        eprintln!("training {name} ...");
        let _ = Trainer::new(train_cfg).run(&mut model, &data.train);
        let metrics = model.evaluate(&data.test, 0.5);
        let params = model.param_count();
        println!(
            "{:>22} {:>9.1}% {:>19.1}% {:>10}",
            name,
            metrics.coverage() * 100.0,
            metrics.selective_accuracy() * 100.0,
            params
        );
        rows.push(VariantRow {
            variant: name.to_owned(),
            coverage: metrics.coverage(),
            selective_accuracy: metrics.selective_accuracy(),
            params,
        });
    }
    println!(
        "\nexpected shape: the two variants behave similarly (the paper's folding is a\n\
         simplification, not a quality trade-off); the separate head costs extra\n\
         parameters."
    );
    save_json(&args.out_dir, "ablation_aux", &rows);
}
