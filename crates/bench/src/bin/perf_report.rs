//! Before/after timing report for the batch-parallel compute core.
//!
//! Measures the legacy implementation (naive GEMM loops, spawn-per-call
//! threading, serial batch loops — preserved behind
//! [`nn::pool::ComputeMode::Legacy`]) against the default blocked-GEMM
//! + worker-pool path, in one process, on four workloads:
//!
//! 1. a GEMM sweep over the Table I layer shapes on a 32×32 grid,
//! 2. the same sweep comparing the AVX2 micro-kernels against the
//!    forced-scalar blocked path (`simd_*` entries — SIMD contribution
//!    in isolation, both sides on the blocked/pooled core),
//! 3. one training epoch of the paper's selective CNN,
//! 4. one `augment_class` call (Algorithm 1 for a single class).
//!
//! Honest-baseline note: the workspace builds with `target-cpu=native`,
//! so the "scalar" side of the `simd_*` rows is already compiler
//! auto-vectorized FMA code. The explicit micro-kernels still win by
//! keeping the full register tile live across the k-loop, but the
//! ratios are measured against that strong baseline, not textbook
//! scalar loops.
//!
//! Writes `BENCH_compute.json` into the current directory (run from the
//! repository root) and prints the same numbers as a table.

use std::time::Instant;

use augment::{AugmentConfig, Augmenter};
use nn::pool::{self, ComputeMode};
use nn::simd;
use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use serde::Serialize;
use telemetry::Registry;
use wafermap::gen::SyntheticWm811k;
use wafermap::DefectClass;

#[derive(Serialize)]
struct Entry {
    name: String,
    baseline_ms: f64,
    optimized_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    pool_threads: usize,
    entries: Vec<Entry>,
    /// Telemetry accumulated by the instrumented train/augment runs
    /// (loss decomposition, per-class augmentation work, timings).
    telemetry: telemetry::Snapshot,
    /// Worker-pool counters for the whole process (global registry).
    pool_telemetry: telemetry::Snapshot,
}

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// Wall-clock milliseconds per call for one sample of `reps` calls.
fn sample_ms(f: &mut impl FnMut(), reps: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(reps.max(1))
}

/// Time `f` under both compute modes and record the comparison.
///
/// Samples alternate between the two modes and each mode reports its
/// fastest sample: on a shared/noisy host, interleaving exposes both
/// modes to the same interference and the minimum estimates the true
/// cost.
fn compare(entries: &mut Vec<Entry>, name: &str, reps: u32, samples: u32, mut f: impl FnMut()) {
    let mut baseline_ms = f64::INFINITY;
    let mut optimized_ms = f64::INFINITY;
    pool::set_compute_mode(ComputeMode::Pooled);
    f(); // warm-up: page in buffers, spawn pool workers untimed
    for _ in 0..samples.max(1) {
        pool::set_compute_mode(ComputeMode::Legacy);
        baseline_ms = baseline_ms.min(sample_ms(&mut f, reps));
        pool::set_compute_mode(ComputeMode::Pooled);
        optimized_ms = optimized_ms.min(sample_ms(&mut f, reps));
    }
    let speedup = baseline_ms / optimized_ms;
    println!("  {name:<28} {baseline_ms:>10.3} ms {optimized_ms:>10.3} ms   {speedup:>5.2}x");
    entries.push(Entry { name: name.to_string(), baseline_ms, optimized_ms, speedup });
}

/// Time `f` with the SIMD micro-kernels forced off and on, both on the
/// blocked/pooled core, and record the comparison. Same interleaved
/// best-of-samples protocol as [`compare`]; the dispatch toggle is
/// restored to runtime detection afterwards.
fn compare_simd(
    entries: &mut Vec<Entry>,
    name: &str,
    reps: u32,
    samples: u32,
    mut f: impl FnMut(),
) {
    let mut baseline_ms = f64::INFINITY;
    let mut optimized_ms = f64::INFINITY;
    pool::set_compute_mode(ComputeMode::Pooled);
    f(); // warm-up
    for _ in 0..samples.max(1) {
        simd::set_force_scalar(true);
        baseline_ms = baseline_ms.min(sample_ms(&mut f, reps));
        simd::set_force_scalar(false);
        optimized_ms = optimized_ms.min(sample_ms(&mut f, reps));
    }
    simd::set_force_scalar(false);
    let speedup = baseline_ms / optimized_ms;
    println!("  {name:<28} {baseline_ms:>10.3} ms {optimized_ms:>10.3} ms   {speedup:>5.2}x");
    entries.push(Entry { name: name.to_string(), baseline_ms, optimized_ms, speedup });
}

/// The Table I layer shapes driven through all three GEMM kernels.
type Kernel = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);
const GEMM_CASES: &[(&str, Kernel, usize, usize, usize)] = &[
    ("gemm_nn_conv1_64x25x1024", nn::gemm::sgemm, 64, 25, 1024),
    ("gemm_nn_conv2_32x576x256", nn::gemm::sgemm, 32, 576, 256),
    ("gemm_nn_conv3_32x288x64", nn::gemm::sgemm, 32, 288, 64),
    ("gemm_nt_fc_32x512x256", nn::gemm::sgemm_nt, 32, 512, 256),
    ("gemm_nt_dw_32x256x576", nn::gemm::sgemm_nt, 32, 256, 576),
    ("gemm_tn_dcol1_25x64x1024", nn::gemm::sgemm_tn, 25, 64, 1024),
    ("gemm_tn_dcol2_576x32x256", nn::gemm::sgemm_tn, 576, 32, 256),
];

/// SIMD micro-kernels vs the forced-scalar blocked path, same shapes.
fn simd_sweep(entries: &mut Vec<Entry>) {
    println!("SIMD sweep (AVX2 micro-kernels vs forced-scalar blocked path)");
    if !simd::active() {
        println!("  (SIMD unavailable on this host — skipping)");
        return;
    }
    for &(name, kernel, m, k, n) in GEMM_CASES {
        let a = rand_vec(m * k + k * m, 1);
        let b = rand_vec(k * n + n * k, 2);
        let mut c = vec![0.0f32; m * n];
        let reps = (200_000_000 / (2 * m * k * n)).clamp(3, 2000) as u32;
        compare_simd(entries, &format!("simd_{name}"), reps, 8, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            kernel(m, k, n, std::hint::black_box(&a), std::hint::black_box(&b), &mut c);
        });
    }
}

/// GEMM sweep at the Table I layer shapes (32×32 input grid, batch 32).
fn gemm_sweep(entries: &mut Vec<Entry>) {
    println!("GEMM sweep (paper layer shapes)");
    // (kernel, m, k, n): conv forwards, the fc forward, a conv
    // weight-gradient (nt) and a conv input-gradient (tn).
    for &(name, kernel, m, k, n) in GEMM_CASES {
        // Operand lengths are generous (max of the layout variants) so
        // one buffer pair serves all three kernels.
        let a = rand_vec(m * k + k * m, 1);
        let b = rand_vec(k * n + n * k, 2);
        let mut c = vec![0.0f32; m * n];
        let reps = (200_000_000 / (2 * m * k * n)).clamp(3, 2000) as u32;
        compare(entries, name, reps, 5, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            kernel(m, k, n, std::hint::black_box(&a), std::hint::black_box(&b), &mut c);
        });
    }
}

/// One training epoch of the Table I selective CNN on a 32×32 grid.
fn train_epoch(entries: &mut Vec<Entry>, registry: &Registry) {
    println!("Training (1 epoch, grid 32, Table I architecture)");
    let (train, _) = SyntheticWm811k::new(32).scale(0.01).seed(2020).build();
    let config = SelectiveConfig::for_grid(32);
    // Instrumented in both modes: telemetry is bit-neutral and its
    // cost is identical on either side of the comparison.
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 32,
        learning_rate: 3e-3,
        target_coverage: 0.75,
        lambda: 0.5,
        alpha: 0.5,
        seed: 2020,
    })
    .with_telemetry(registry.clone());
    compare(entries, "train_epoch_grid32", 1, 3, || {
        let mut model = SelectiveModel::new(&config, 2020);
        let _ = trainer.run(&mut model, &train);
    });
}

/// Algorithm 1 for one class (auto-encoder training + generation).
fn augment_one_class(entries: &mut Vec<Entry>, registry: &Registry) {
    println!("Augmentation (one class, grid 16)");
    let (train, _) = SyntheticWm811k::new(16).scale(0.004).seed(2020).build();
    let n_cl = train.of_class(DefectClass::Donut).len().max(1);
    let augmenter = Augmenter::new(
        AugmentConfig::new(n_cl * 4).with_channels([8, 8, 8]).with_ae_epochs(4),
        2020,
    )
    .with_telemetry(registry.clone());
    compare(entries, "augment_class_grid16", 1, 3, || {
        let _ = augmenter.augment_class(&train, DefectClass::Donut);
    });
}

fn main() {
    let mut entries = Vec::new();
    let registry = Registry::new();
    println!(
        "perf_report: legacy (pre-optimization) vs pooled (blocked GEMM + worker pool), \
         {} pool thread(s), simd {}\n",
        pool::num_threads(),
        if simd::active() { "avx2+fma" } else { "off" }
    );
    println!("  {:<28} {:>13} {:>13} {:>8}", "workload", "baseline", "optimized", "speedup");
    gemm_sweep(&mut entries);
    simd_sweep(&mut entries);
    train_epoch(&mut entries, &registry);
    augment_one_class(&mut entries, &registry);

    let report = Report {
        description: "legacy vs pooled compute core (plus simd_* rows: AVX2 micro-kernels vs \
                      forced-scalar blocked path, both pooled); times are best-of-samples \
                      wall-clock ms; baseline builds with target-cpu=native, so the scalar \
                      side is already compiler-vectorized"
            .to_string(),
        pool_threads: pool::num_threads(),
        entries,
        telemetry: registry.snapshot(),
        pool_telemetry: telemetry::global().snapshot(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_compute.json", json).expect("write BENCH_compute.json");
    println!("\nwrote BENCH_compute.json");
}
