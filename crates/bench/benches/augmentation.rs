//! Augmentation micro-benchmarks: the per-image operations of
//! Algorithm 1 (encode, perturb+decode, quantize, rotate,
//! salt-and-pepper) and auto-encoder training throughput.

use augment::{AutoencoderConfig, ConvAutoencoder};
use criterion::{criterion_group, criterion_main, Criterion};
use nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use wafermap::gen::{generate, GenConfig};
use wafermap::{ops, DefectClass};

fn bench_augmentation(c: &mut Criterion) {
    let gen_cfg = GenConfig::new(32);
    let mut rng = StdRng::seed_from_u64(0);
    let map = generate(DefectClass::Donut, &gen_cfg, &mut rng);
    let ae_cfg = AutoencoderConfig::for_grid(32).with_channels([8, 8, 8]);
    let mut ae = ConvAutoencoder::new(&ae_cfg, 1);
    let image = Tensor::from_vec(map.to_image(), &[1, 1, 32, 32]);
    let z = ae.encode(&image);

    let mut group = c.benchmark_group("augmentation");
    group
        .bench_function("ae_encode_single", |b| b.iter(|| black_box(ae.encode(black_box(&image)))));
    group.bench_function("ae_decode_single", |b| b.iter(|| black_box(ae.decode(black_box(&z)))));
    group.bench_function("quantize", |b| {
        let decoded = ae.decode(&z);
        b.iter(|| black_box(ops::quantize(black_box(decoded.data()), &map).expect("shape")))
    });
    group.bench_function("rotate_45deg", |b| {
        b.iter(|| black_box(ops::rotate(black_box(&map), 45.0)))
    });
    group.bench_function("salt_and_pepper_1pct", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(ops::salt_and_pepper(black_box(&map), 0.01, &mut rng)))
    });
    group.bench_function("ae_train_epoch_16imgs", |b| {
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            data.extend(generate(DefectClass::Center, &gen_cfg, &mut rng).to_image());
        }
        let images = Tensor::from_vec(data, &[16, 1, 32, 32]);
        let mut fresh = ConvAutoencoder::new(&ae_cfg, 4);
        b.iter(|| black_box(fresh.train(black_box(&images), 1, 16, 1e-3, 5)));
    });
    group.finish();
}

criterion_group!(benches, bench_augmentation);
criterion_main!(benches);
