//! Synthetic wafer generation benchmarks: per-class pattern painting
//! and full dataset assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use wafermap::gen::{generate, GenConfig, SyntheticWm811k};
use wafermap::DefectClass;

fn bench_generation(c: &mut Criterion) {
    let cfg = GenConfig::new(32);
    let mut group = c.benchmark_group("generation");
    for class in DefectClass::ALL {
        group.bench_with_input(
            BenchmarkId::new("single_wafer", class.name()),
            &class,
            |b, &class| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| black_box(generate(class, &cfg, &mut rng)))
            },
        );
    }
    group.sample_size(10);
    group.bench_function("dataset_0p2pct_of_wm811k", |b| {
        b.iter(|| black_box(SyntheticWm811k::new(32).scale(0.002).seed(1).build()))
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
