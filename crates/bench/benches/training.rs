//! Training-step benchmarks: one forward+backward+Adam step of the
//! Table I selective model (batch 32), under both the plain
//! cross-entropy objective (`c0 = 1`) and the selective objective.

use criterion::{criterion_group, criterion_main, Criterion};
use nn::loss::softmax_cross_entropy;
use nn::optim::Adam;
use nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{SelectiveConfig, SelectiveLoss, SelectiveModel};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let batch = 32usize;
    let x = Tensor::randn(&[batch, 1, 32, 32], 1.0, &mut rng);
    let labels: Vec<usize> = (0..batch).map(|i| i % 9).collect();
    let weights = vec![1.0f32; batch];

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("plain_ce_step_b32", |b| {
        let mut model = SelectiveModel::new(&SelectiveConfig::for_grid(32), 1);
        let mut adam = Adam::new(1e-3);
        b.iter(|| {
            let (logits, _) = model.forward(black_box(&x));
            let (_, grad) = softmax_cross_entropy(&logits, &labels, Some(&weights));
            model.zero_grad();
            model.backward(&grad, &vec![0.0; batch]);
            model.step(&mut adam);
        });
    });

    group.bench_function("selective_step_b32", |b| {
        let mut model = SelectiveModel::new(&SelectiveConfig::for_grid(32), 2);
        let mut adam = Adam::new(1e-3);
        let loss = SelectiveLoss::new(0.5);
        b.iter(|| {
            let (logits, g) = model.forward(black_box(&x));
            let (_, grad_logits, grad_g) = loss.compute(&logits, &g, &labels, &weights);
            model.zero_grad();
            model.backward(&grad_logits, &grad_g);
            model.step(&mut adam);
        });
    });

    group.bench_function("inference_b32", |b| {
        let mut model = SelectiveModel::new(&SelectiveConfig::for_grid(32), 3);
        b.iter(|| black_box(model.predict(black_box(&x), 0.5)));
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
