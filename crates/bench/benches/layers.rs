//! Layer forward/backward micro-benchmarks for the Table I CNN stages
//! (experiment E2: model throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use nn::layers::{Conv2d, MaxPool2d};
use nn::{Layer, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{SelectiveConfig, SelectiveModel};
use std::hint::black_box;

fn bench_layers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("layers");

    // Conv1 of Table I: 1 -> 64 channels, 5x5, on a 32x32 wafer.
    let mut conv1 = Conv2d::same(1, 64, 5, &mut rng);
    let x1 = Tensor::randn(&[8, 1, 32, 32], 1.0, &mut rng);
    group.bench_function("conv1_forward_b8", |b| {
        b.iter(|| black_box(conv1.forward(black_box(&x1))))
    });
    let y1 = conv1.forward(&x1);
    group.bench_function("conv1_backward_b8", |b| {
        b.iter(|| black_box(conv1.backward(black_box(&y1))))
    });

    // Conv2: 64 -> 32 channels, 3x3, on the pooled 16x16 map.
    let mut conv2 = Conv2d::same(64, 32, 3, &mut rng);
    let x2 = Tensor::randn(&[8, 64, 16, 16], 1.0, &mut rng);
    group.bench_function("conv2_forward_b8", |b| {
        b.iter(|| black_box(conv2.forward(black_box(&x2))))
    });

    let mut pool = MaxPool2d::new(2);
    group.bench_function("maxpool_forward_b8", |b| {
        b.iter(|| black_box(pool.forward(black_box(&x2))))
    });

    // Whole Table I model inference.
    let mut model = SelectiveModel::new(&SelectiveConfig::for_grid(32), 0);
    let batch = Tensor::randn(&[8, 1, 32, 32], 1.0, &mut rng);
    group.bench_function("selective_model_forward_b8", |b| {
        b.iter(|| black_box(model.forward(black_box(&batch))))
    });
    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
