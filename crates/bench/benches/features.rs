//! Feature-extraction micro-benchmarks for the SVM baseline pipeline
//! (Radon, density and geometry features).

use baseline::features::{
    density_features, extract, geometry_features, radon_features, FeatureConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use wafermap::gen::{generate, GenConfig};
use wafermap::DefectClass;

fn bench_features(c: &mut Criterion) {
    let cfg = GenConfig::new(32);
    let mut rng = StdRng::seed_from_u64(0);
    let map = generate(DefectClass::EdgeLoc, &cfg, &mut rng);
    let feature_cfg = FeatureConfig::default();
    let mut group = c.benchmark_group("features");
    group.bench_function("density_13zone", |b| {
        b.iter(|| black_box(density_features(black_box(&map))))
    });
    group.bench_function("radon_20angles", |b| {
        b.iter(|| black_box(radon_features(black_box(&map), 20)))
    });
    group.bench_function("geometry_largest_region", |b| {
        b.iter(|| black_box(geometry_features(black_box(&map))))
    });
    group.bench_function("extract_59dim", |b| {
        b.iter(|| black_box(extract(black_box(&map), &feature_cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
