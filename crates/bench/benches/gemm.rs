//! GEMM micro-benchmarks — the kernel underneath every conv and
//! linear layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128, 256] {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("sgemm_square", n), &n, |bench, &n| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                nn::gemm::sgemm(n, n, n, black_box(&a), black_box(&b), &mut out);
            });
        });
    }
    // The conv2 shape from Table I on a 32x32 wafer:
    // [32, 576] x [576, 256].
    let (m, k, n) = (32usize, 576usize, 256usize);
    let a = rand_vec(m * k, 3);
    let b = rand_vec(k * n, 4);
    group.throughput(Throughput::Elements((2 * m * k * n) as u64));
    group.bench_function("sgemm_conv2_shape", |bench| {
        let mut out = vec![0.0f32; m * n];
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            nn::gemm::sgemm(m, k, n, black_box(&a), black_box(&b), &mut out);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
