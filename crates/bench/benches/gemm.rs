//! GEMM micro-benchmarks — the kernel underneath every conv and
//! linear layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128, 256] {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("sgemm_square", n), &n, |bench, &n| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                nn::gemm::sgemm(n, n, n, black_box(&a), black_box(&b), &mut out);
            });
        });
    }
    // Table I layer shapes on a 32x32 wafer (batch 32): the conv
    // forward products, the fc forward (nt), a conv weight-gradient
    // (nt) and the conv input-gradients (tn). `sgemm_conv2_shape` is
    // the historical name for the conv2 forward product.
    type Kernel = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);
    let cases: &[(&str, Kernel, usize, usize, usize)] = &[
        ("sgemm_conv1_shape", nn::gemm::sgemm, 64, 25, 1024),
        ("sgemm_conv2_shape", nn::gemm::sgemm, 32, 576, 256),
        ("sgemm_conv3_shape", nn::gemm::sgemm, 32, 288, 64),
        ("sgemm_nt_fc_shape", nn::gemm::sgemm_nt, 32, 512, 256),
        ("sgemm_nt_dw2_shape", nn::gemm::sgemm_nt, 32, 256, 576),
        ("sgemm_tn_dcol1_shape", nn::gemm::sgemm_tn, 25, 64, 1024),
        ("sgemm_tn_dcol2_shape", nn::gemm::sgemm_tn, 576, 32, 256),
    ];
    for &(name, kernel, m, k, n) in cases {
        // Operand lengths cover all layout variants of the same shape.
        let a = rand_vec(m * k + k * m, 3);
        let b = rand_vec(k * n + n * k, 4);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_function(name, |bench| {
            let mut out = vec![0.0f32; m * n];
            bench.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                kernel(m, k, n, black_box(&a), black_box(&b), &mut out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
