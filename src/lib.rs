//! # wm-dsl — Wafer Map Defect Classification with Deep Selective Learning
//!
//! A Rust reproduction of Alawieh, Boning and Pan, *"Wafer Map Defect
//! Patterns Classification using Deep Selective Learning"* (DAC 2020).
//!
//! This meta-crate re-exports the workspace members so downstream code
//! can depend on a single crate:
//!
//! - [`wafermap`] — wafer-map data structures and a synthetic
//!   WM-811K-style defect generator.
//! - [`nn`] — the CPU deep-learning substrate (tensors, conv layers,
//!   Adam, manual backprop).
//! - [`selective`] — the paper's contribution: a two-head CNN with an
//!   integrated reject option and the selective training objective.
//! - [`augment`] — convolutional auto-encoder data augmentation
//!   (Algorithm 1).
//! - [`baseline`] — the Radon + geometry feature SVM baseline
//!   (Wu et al., "SVM \[2\]" in the paper).
//! - [`eval`] — confusion matrices, precision/recall/F1, coverage and
//!   selective-risk metrics, plus serving-side operational stats.
//! - [`serve`] — batched selective-inference serving: checkpoint
//!   loading, threshold calibration, routing, and coverage-shift
//!   alarms (the paper's Section IV-D deployment story).
//! - [`telemetry`] — workspace-wide metrics (counters, gauges, bounded
//!   histograms, timers) with JSON and Prometheus exposition; wired
//!   through training, augmentation, the worker pool and serving.
//!
//! # Quickstart
//!
//! ```
//! use wm_dsl::prelude::*;
//!
//! // A tiny synthetic WM-811K mixture (1% of the paper's scale).
//! let (train, test) = SyntheticWm811k::new(16).scale(0.002).seed(1).build();
//! assert!(train.len() > test.len());
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end train/evaluate run.

#![forbid(unsafe_code)]

pub use augment;
pub use baseline;
pub use eval;
pub use nn;
pub use selective;
pub use serve;
pub use telemetry;
pub use wafermap;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use augment::{AugmentConfig, Augmenter};
    pub use baseline::{FeatureConfig, SvmBaseline};
    pub use eval::{ConfusionMatrix, SelectiveMetrics};
    pub use selective::{
        CheckpointBundle, SelectiveConfig, SelectiveModel, TrainConfig, TrainReport, Trainer,
    };
    pub use serve::{Engine, Route, ServeConfig, WaferDecision};
    pub use telemetry::Registry;
    pub use wafermap::{
        gen::{GenConfig, SyntheticWm811k},
        Dataset, DefectClass, Die, Sample, WaferMap,
    };
}
